//! Soak: many saga and flexible-transaction instances interleaved on
//! one engine, navigated round-robin one step at a time. Instance
//! state must stay fully isolated: every instance ends with exactly
//! the outcome it would have had running alone.

use atm::fixtures;
use std::sync::Arc;
use txn_substrate::{FailurePlan, KvProgram, MultiDatabase, ProgramRegistry, Value};
use wftx::engine::{Engine, InstanceId, InstanceStatus};
use wftx::model::Container;

#[test]
fn round_robin_interleaving_of_many_instances() {
    let fed = MultiDatabase::new(0);
    fed.add_database("db");
    let registry = Arc::new(ProgramRegistry::new());

    // Per-instance programs: instance i writes its own keys, and its
    // step S2 fails iff i is odd (scripted per-label).
    let n_inst = 24usize;
    let mut defs = Vec::new();
    for i in 0..n_inst {
        let mut steps = Vec::new();
        for j in 1..=3 {
            let step = format!("I{i}_S{j}");
            registry.register(Arc::new(
                KvProgram::write(&format!("do_{step}"), "db", &step, 1i64).with_label(&step),
            ));
            registry.register(Arc::new(KvProgram::write(
                &format!("undo_{step}"),
                "db",
                &step,
                Value::Int(-1),
            )));
            steps.push(atm::StepSpec::compensatable(
                &step,
                &format!("do_{step}"),
                &format!("undo_{step}"),
            ));
        }
        if i % 2 == 1 {
            fed.injector()
                .set_plan(&format!("I{i}_S2"), FailurePlan::Always);
        }
        let spec = atm::SagaSpec::linear(&format!("saga_{i}"), steps);
        defs.push(exotica::translate_saga(&spec).unwrap());
    }

    let engine = Engine::new(Arc::clone(&fed), registry);
    let mut ids = Vec::new();
    for def in &defs {
        engine.register(def.clone()).unwrap();
        ids.push(engine.start(&def.name, Container::empty()).unwrap());
    }

    // Round-robin stepping until global quiescence.
    loop {
        let mut progressed = false;
        for &id in &ids {
            if engine.step(id).unwrap() {
                progressed = true;
            }
        }
        if !progressed {
            break;
        }
    }

    let db = fed.db("db").unwrap();
    for (i, &id) in ids.iter().enumerate() {
        assert_eq!(
            engine.status(id).unwrap(),
            InstanceStatus::Finished,
            "i={i}"
        );
        let committed = engine
            .output(id)
            .unwrap()
            .get("Committed")
            .and_then(|v| v.as_int())
            == Some(1);
        assert_eq!(committed, i % 2 == 0, "i={i}");
        // Database effects exactly as if run alone.
        for j in 1..=3 {
            let key = format!("I{i}_S{j}");
            let expected = if i % 2 == 0 {
                Some(Value::Int(1))
            } else if j == 1 {
                Some(Value::Int(-1)) // compensated
            } else {
                None // S2 failed, S3 never ran
            };
            assert_eq!(db.peek(&key), expected, "i={i} j={j}");
        }
    }
}

#[test]
fn interleaved_flex_instances_stay_isolated() {
    // Three Figure 3 instances with different failure scripts,
    // interleaved. Scripting is per-world, so give each instance its
    // own step labels by cloning the spec with renamed steps.
    let fed = MultiDatabase::new(0);
    fed.add_database("db");
    let registry = Arc::new(ProgramRegistry::new());

    let scenarios: &[(&str, Option<&str>)] = &[
        ("a", None),         // happy: commits via p1
        ("b", Some("b_T8")), // T8 fails: commits via p2
        ("c", Some("b_T2")), // (label below) T2 fails: aborts
    ];
    let mut defs = Vec::new();
    for (tag, _) in scenarios {
        let mut spec = fixtures::figure3_spec();
        spec.name = format!("flex_{tag}");
        for step in &mut spec.steps {
            let new = format!("{tag}_{}", step.name);
            step.program = format!("prog_{new}");
            step.compensation = step.compensation.as_ref().map(|_| format!("comp_{new}"));
            registry.register(Arc::new(
                KvProgram::write(&step.program, "db", &new, 1i64).with_label(&new),
            ));
            if let Some(c) = &step.compensation {
                registry.register(Arc::new(KvProgram::write(c, "db", &new, Value::Int(-1))));
            }
            step.name = new;
        }
        for path in &mut spec.paths {
            for s in path {
                *s = format!("{tag}_{s}");
            }
        }
        defs.push(exotica::translate_flex(&spec).unwrap());
    }
    fed.injector().set_plan("b_T8", FailurePlan::Always);
    fed.injector().set_plan("c_T2", FailurePlan::Always);

    let engine = Engine::new(Arc::clone(&fed), registry);
    let mut ids: Vec<InstanceId> = Vec::new();
    for def in &defs {
        engine.register(def.clone()).unwrap();
        ids.push(engine.start(&def.name, Container::empty()).unwrap());
    }
    loop {
        let mut progressed = false;
        for &id in &ids {
            if engine.step(id).unwrap() {
                progressed = true;
            }
        }
        if !progressed {
            break;
        }
    }

    let outcome = |k: usize| {
        engine
            .output(ids[k])
            .unwrap()
            .get("Committed")
            .and_then(|v| v.as_int())
    };
    assert_eq!(outcome(0), Some(1), "a: happy");
    assert_eq!(outcome(1), Some(1), "b: commits via p2");
    assert_eq!(outcome(2), Some(0), "c: aborted");

    let db = fed.db("db").unwrap();
    assert_eq!(db.peek("a_T8"), Some(Value::Int(1)));
    assert_eq!(db.peek("b_T5"), Some(Value::Int(-1)), "b compensated T5");
    assert_eq!(db.peek("b_T7"), Some(Value::Int(1)));
    assert_eq!(db.peek("c_T1"), Some(Value::Int(-1)), "c compensated T1");
    assert_eq!(
        db.peek("c_T3"),
        None,
        "c's retriable fallback contains T2; aborted"
    );
}
