//! Simulated business time ("makespan"): programs carry virtual-clock
//! durations, so a workflow run accumulates the time its executed path
//! would take in the real world. The paper's processes are
//! *long-running* — hours to weeks — and the interesting cost of a
//! failure is not engine microseconds but the extra business time the
//! compensation/fallback path burns. These tests pin the makespan
//! algebra of the Figure 3 scenarios.

use std::sync::Arc;
use txn_substrate::{FailurePlan, KvProgram, MultiDatabase, ProgramRegistry, Value};
use wftx::engine::{Engine, InstanceStatus};
use wftx::model::Container;

/// Per-step business durations (ticks). Forward steps are slow;
/// compensations cost half of their forward step.
const DUR: &[(&str, u64)] = &[
    ("T1", 10),
    ("T2", 20),
    ("T3", 40),
    ("T4", 20),
    ("T5", 30),
    ("T6", 30),
    ("T7", 50),
    ("T8", 20),
];

fn world(plans: &[(&str, FailurePlan)]) -> (Arc<MultiDatabase>, Arc<ProgramRegistry>) {
    let fed = MultiDatabase::new(0);
    fed.add_database("db");
    let registry = Arc::new(ProgramRegistry::new());
    for (step, d) in DUR {
        registry.register(Arc::new(
            KvProgram::write(&format!("prog_{step}"), "db", step, 1i64)
                .with_label(step)
                .with_duration(*d),
        ));
        registry.register(Arc::new(
            KvProgram::write(&format!("comp_{step}"), "db", step, Value::Int(-1))
                .with_duration(*d / 2),
        ));
    }
    for (label, plan) in plans {
        fed.injector().set_plan(label, plan.clone());
    }
    (fed, registry)
}

/// Runs the Figure 4 process and returns the simulated makespan.
fn makespan(plans: &[(&str, FailurePlan)]) -> u64 {
    let (fed, registry) = world(plans);
    let def = exotica::translate_flex(&atm::fixtures::figure3_spec()).unwrap();
    let engine = Engine::new(Arc::clone(&fed), registry);
    engine.register(def).unwrap();
    let id = engine.start("figure3", Container::empty()).unwrap();
    assert_eq!(
        engine.run_to_quiescence(id).unwrap(),
        InstanceStatus::Finished
    );
    engine.clock().now()
}

#[test]
fn happy_path_makespan_is_the_sum_of_p1_durations() {
    // T1 + T2 + T4 + T5 + T6 + T8 = 10+20+20+30+30+20 = 130.
    assert_eq!(makespan(&[]), 130);
}

#[test]
fn t8_failure_adds_compensations_and_t7() {
    // Forward work up to and including the failed T8 attempt
    // (10+20+20+30+30+20 = 130: the aborted attempt still burns its
    // duration), plus compensations of T6 and T5 (15 + 15), plus T7
    // (50) = 210.
    assert_eq!(makespan(&[("T8", FailurePlan::Always)]), 130 + 15 + 15 + 50);
}

#[test]
fn t4_failure_is_cheaper_than_t8_failure() {
    // T1 + T2 + T4(failed attempt) + T3 = 10+20+20+40 = 90: failing
    // early is cheaper than failing late — the crossover the
    // preference order is designed around.
    let early = makespan(&[("T4", FailurePlan::Always)]);
    let late = makespan(&[("T8", FailurePlan::Always)]);
    assert_eq!(early, 90);
    assert!(early < late);
}

#[test]
fn retries_accumulate_business_time() {
    // T3 needs 3 attempts: its 40-tick duration is paid three times.
    let m = makespan(&[("T4", FailurePlan::Always), ("T3", FailurePlan::FirstN(2))]);
    assert_eq!(m, 10 + 20 + 20 + 3 * 40);
}

#[test]
fn full_abort_pays_forward_plus_compensation() {
    // T1 + T2(failed) + comp(T1) = 10 + 20 + 5 = 35.
    assert_eq!(makespan(&[("T2", FailurePlan::Always)]), 35);
}

#[test]
fn native_executor_agrees_on_makespan() {
    // The native flexible executor burns exactly the same simulated
    // time as the workflow-hosted run for every scenario — virtual
    // time measures the executed path, not the host machinery.
    for plans in [
        vec![],
        vec![("T8", FailurePlan::Always)],
        vec![("T4", FailurePlan::Always)],
        vec![("T2", FailurePlan::Always)],
    ] {
        let wf = makespan(&plans);
        let (fed, registry) = world(&plans);
        let exec = atm::FlexExecutor::new(Arc::clone(&fed), registry);
        exec.run(&atm::fixtures::figure3_spec()).unwrap();
        assert_eq!(fed.clock().now(), wf, "plans {plans:?}");
    }
}
