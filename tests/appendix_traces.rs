//! Golden-trace reproductions of the paper's appendix
//! ("Execution Examples"): the narrated saga execution and the
//! narrated flexible-transaction execution, pinned event-for-event
//! against the engine's journal.
//!
//! Experiments E6 and E7 of EXPERIMENTS.md.

use atm::fixtures;
use std::sync::Arc;
use txn_substrate::{FailurePlan, MultiDatabase, ProgramRegistry};
use wftx::engine::{audit, Engine, InstanceStatus};
use wftx::model::Container;

fn saga_rig(n: usize) -> (Arc<MultiDatabase>, Arc<ProgramRegistry>) {
    let fed = MultiDatabase::new(0);
    let registry = Arc::new(ProgramRegistry::new());
    fixtures::register_saga_programs(&fed, &registry, n);
    (fed, registry)
}

/// Appendix, "Sagas": the forward block runs the subtransactions in
/// order; when one aborts, the block terminates by dead path
/// elimination, the compensation block receives the `State_i` flags
/// through the data container mapping, the NOP's connectors select
/// the last executed activity, and compensation proceeds in reverse
/// order.
#[test]
fn appendix_saga_trace_abort_at_s2() {
    let (fed, registry) = saga_rig(3);
    fed.injector().set_plan("S2", FailurePlan::Always);
    let spec = fixtures::linear_saga("appendix_saga", 3);
    let def = exotica::translate_saga(&spec).unwrap();

    let engine = Engine::new(Arc::clone(&fed), registry);
    engine.register(def).unwrap();
    let id = engine.start("appendix_saga", Container::empty()).unwrap();
    assert_eq!(
        engine.run_to_quiescence(id).unwrap(),
        InstanceStatus::Finished
    );

    let trace = audit::trace(&engine.journal_events(), id);
    assert_eq!(
        trace,
        vec![
            "start:Forward#0",
            "start:Forward/S1#0",
            "finish:Forward/S1=1",
            "start:Forward/S2#0",
            "finish:Forward/S2=0",
            "dead:Forward/S3",
            "finish:Forward=0",
            "start:Compensation#0",
            "start:Compensation/NOP#0",
            "finish:Compensation/NOP=1",
            "dead:Compensation/Comp_S3",
            "dead:Compensation/Comp_S2",
            "start:Compensation/Comp_S1#0",
            "finish:Compensation/Comp_S1=1",
            "finish:Compensation=1",
            "done",
        ]
    );

    // Database effect: S1 compensated (-1), S2/S3 never committed.
    assert_eq!(fixtures::marker(&fed, "S1"), Some(-1));
    assert_eq!(fixtures::marker(&fed, "S2"), None);
    assert_eq!(fixtures::marker(&fed, "S3"), None);
    // Process outcome container.
    let out = engine.output(id).unwrap();
    assert_eq!(out.get("Committed").and_then(|v| v.as_int()), Some(0));
}

/// Appendix: "If both of them execute successfully, the block
/// terminates … the compensation block is not executed. By dead path
/// elimination it is marked as finished and the entire process
/// terminates."
#[test]
fn appendix_saga_trace_success() {
    let (fed, registry) = saga_rig(3);
    let spec = fixtures::linear_saga("appendix_saga", 3);
    let def = exotica::translate_saga(&spec).unwrap();
    let engine = Engine::new(Arc::clone(&fed), registry);
    engine.register(def).unwrap();
    let id = engine.start("appendix_saga", Container::empty()).unwrap();
    engine.run_to_quiescence(id).unwrap();

    let trace = audit::trace(&engine.journal_events(), id);
    assert_eq!(
        trace,
        vec![
            "start:Forward#0",
            "start:Forward/S1#0",
            "finish:Forward/S1=1",
            "start:Forward/S2#0",
            "finish:Forward/S2=1",
            "start:Forward/S3#0",
            "finish:Forward/S3=1",
            "finish:Forward=1",
            "dead:Compensation",
            "done",
        ]
    );
    let out = engine.output(id).unwrap();
    assert_eq!(out.get("Committed").and_then(|v| v.as_int()), Some(1));
    for i in 1..=3 {
        assert_eq!(fixtures::marker(&fed, &format!("S{i}")), Some(1));
    }
}

/// Appendix: "compensations are in general considered retrievable …
/// If it fails, it should be retried until it succeeds. This can be
/// done by using the exit condition of the activities."
#[test]
fn appendix_saga_compensation_retries_via_exit_condition() {
    let (fed, registry) = saga_rig(2);
    fed.injector().set_plan("S2", FailurePlan::Always);
    fed.injector().set_plan("undo_S1", FailurePlan::FirstN(2));
    let spec = fixtures::linear_saga("appendix_saga", 2);
    let def = exotica::translate_saga(&spec).unwrap();
    let engine = Engine::new(Arc::clone(&fed), registry);
    engine.register(def).unwrap();
    let id = engine.start("appendix_saga", Container::empty()).unwrap();
    engine.run_to_quiescence(id).unwrap();

    let by_activity = audit::executions_by_activity(&engine.journal_events(), id);
    assert_eq!(
        by_activity["Compensation/Comp_S1"], 3,
        "two failed attempts + the success"
    );
    let s = audit::summarize(&engine.journal_events(), id);
    assert_eq!(s.reschedules, 2);
    assert_eq!(fixtures::marker(&fed, "S1"), Some(-1));
}

fn figure3_engine(
    plans: &[(&str, FailurePlan)],
) -> (Arc<MultiDatabase>, Engine, wftx::engine::InstanceId) {
    let fed = MultiDatabase::new(0);
    let registry = Arc::new(ProgramRegistry::new());
    fixtures::register_figure3_programs(&fed, &registry);
    for (label, plan) in plans {
        fed.injector().set_plan(label, plan.clone());
    }
    let def = exotica::translate_flex(&fixtures::figure3_spec()).unwrap();
    let engine = Engine::new(Arc::clone(&fed), registry);
    engine.register(def).unwrap();
    let id = engine.start("figure3", Container::empty()).unwrap();
    assert_eq!(
        engine.run_to_quiescence(id).unwrap(),
        InstanceStatus::Finished
    );
    (fed, engine, id)
}

/// Appendix, "Flexible Transactions": the happy path — "first T1 is
/// executed … If T1 commits … T2 is executed … Upon successful
/// completion of T4, the block that contains T5 and T6 is started. If
/// both transactions commit, T8 is executed."
#[test]
fn appendix_flex_trace_happy_path() {
    let (fed, engine, id) = figure3_engine(&[]);
    let trace = audit::trace(&engine.journal_events(), id);
    assert_eq!(
        trace,
        vec![
            "start:Blk_T1#0",
            "start:Blk_T1/T1#0",
            "finish:Blk_T1/T1=1",
            "finish:Blk_T1=1",
            "start:T2#0",
            "finish:T2=1",
            // T2's commit immediately kills its failure route (dead
            // path elimination runs inline with each termination).
            "dead:Comp_T1",
            "start:T4#0",
            "finish:T4=1",
            "dead:T3",
            "start:Blk_T5_T6#0",
            "start:Blk_T5_T6/T5#0",
            "finish:Blk_T5_T6/T5=1",
            "start:Blk_T5_T6/T6#0",
            "finish:Blk_T5_T6/T6=1",
            "finish:Blk_T5_T6=1",
            "start:T8#0",
            "finish:T8=1",
            "dead:Comp_T5_T6",
            "dead:T7",
            "done",
        ]
    );
    let out = engine.output(id).unwrap();
    assert_eq!(out.get("Committed").and_then(|v| v.as_int()), Some(1));
    assert_eq!(out.get("Via_0").and_then(|v| v.as_int()), Some(1));
    assert_eq!(fixtures::marker(&fed, "T8"), Some(1));
}

/// Appendix: "If T1 aborts, the return code is 0 and therefore the
/// outgoing control connector from T1 is deactivated … all other
/// activities will be marked as terminated following a similar
/// mechanism and the overall process eventually terminates."
#[test]
fn appendix_flex_trace_t1_aborts() {
    let (_, engine, id) = figure3_engine(&[("T1", FailurePlan::Always)]);
    let trace = audit::trace(&engine.journal_events(), id);
    // T1 aborts inside its segment; the (empty) compensation runs; by
    // dead path elimination every other activity is terminated.
    assert!(trace.contains(&"finish:Blk_T1/T1=0".to_string()));
    assert!(trace.contains(&"finish:Blk_T1=0".to_string()));
    assert!(trace.contains(&"dead:T2".to_string()));
    assert!(trace.contains(&"dead:T8".to_string()));
    assert!(trace.contains(&"dead:T3".to_string()));
    assert!(trace.contains(&"dead:T7".to_string()));
    assert!(trace.contains(&"dead:Comp_T1/Comp_T1".to_string()));
    assert_eq!(trace.last().unwrap(), "done");
    let out = engine.output(id).unwrap();
    assert_eq!(out.get("Committed").and_then(|v| v.as_int()), Some(0));
}

/// Appendix: "When T2 commits, T4 is executed. If T4 aborts, T3 is
/// executed until it successfully commits. All other activities are
/// marked as terminated by dead path elimination."
#[test]
fn appendix_flex_trace_t4_aborts_t3_retries() {
    let (fed, engine, id) =
        figure3_engine(&[("T4", FailurePlan::Always), ("T3", FailurePlan::FirstN(2))]);
    let by_activity = audit::executions_by_activity(&engine.journal_events(), id);
    assert_eq!(by_activity["T3"], 3, "T3 retried until commit");
    assert_eq!(by_activity["T4"], 1);
    assert!(!by_activity.contains_key("T7"));
    let out = engine.output(id).unwrap();
    assert_eq!(out.get("Committed").and_then(|v| v.as_int()), Some(1));
    assert_eq!(out.get("Via_2").and_then(|v| v.as_int()), Some(1));
    assert_eq!(fixtures::marker(&fed, "T3"), Some(1));
    assert_eq!(fixtures::marker(&fed, "T5"), None, "p1 branch never ran");
}

/// Appendix: "If either one of T5, T6 or T8 aborts, control is given
/// to the compensation block containing T5⁻¹ and T6⁻¹ … T5⁻¹ and T6⁻¹
/// are executed depending on whether their corresponding transaction
/// committed or not. Once the compensating block commits, T7 is
/// executed until it commits."
#[test]
fn appendix_flex_trace_t8_aborts_compensation_then_t7() {
    let (fed, engine, id) = figure3_engine(&[("T8", FailurePlan::Always)]);
    let trace = audit::trace(&engine.journal_events(), id);

    // Compensation order: T6 before T5 (reverse commit order).
    let pos = |needle: &str| {
        trace
            .iter()
            .position(|t| t == needle)
            .unwrap_or_else(|| panic!("{needle} not in trace: {trace:?}"))
    };
    assert!(pos("finish:T8=0") < pos("start:Comp_T5_T6#0"));
    assert!(pos("start:Comp_T5_T6/Comp_T6#0") < pos("start:Comp_T5_T6/Comp_T5#0"));
    assert!(pos("finish:Comp_T5_T6/Comp_T5=1") < pos("start:T7#0"));

    let out = engine.output(id).unwrap();
    assert_eq!(out.get("Committed").and_then(|v| v.as_int()), Some(1));
    assert_eq!(out.get("Via_0").and_then(|v| v.as_int()), Some(0));
    assert_eq!(out.get("Via_1").and_then(|v| v.as_int()), Some(1));
    assert_eq!(fixtures::marker(&fed, "T5"), Some(-1));
    assert_eq!(fixtures::marker(&fed, "T6"), Some(-1));
    assert_eq!(fixtures::marker(&fed, "T7"), Some(1));
}

/// Appendix: "If T6 [aborts] … Using the data connector, the return
/// code for both T5 and T6 is available in the compensating block.
/// T5⁻¹ and T6⁻¹ are executed depending on whether their corresponding
/// transaction committed or not" — here only T5 committed, so only
/// T5⁻¹ runs.
#[test]
fn appendix_flex_trace_t6_aborts_only_t5_compensated() {
    let (fed, engine, id) = figure3_engine(&[("T6", FailurePlan::Always)]);
    let by_activity = audit::executions_by_activity(&engine.journal_events(), id);
    assert!(by_activity.contains_key("Comp_T5_T6/Comp_T5"));
    assert!(
        !by_activity.contains_key("Comp_T5_T6/Comp_T6"),
        "T6 never committed, so T6⁻¹ must not run"
    );
    assert_eq!(fixtures::marker(&fed, "T5"), Some(-1));
    assert_eq!(fixtures::marker(&fed, "T6"), None);
    assert_eq!(fixtures::marker(&fed, "T7"), Some(1));
}
