//! The §2 argument, executable: under identical site failures, a
//! two-phase-commit global transaction violates atomicity (heuristic
//! outcome) or blocks other work, while the saga over the same sites
//! ends in a consistent state (all effects present or all
//! compensated) without ever holding cross-site locks.

use atm::{GlobalTxn, SiteWrites, StepSpec, TwoPcExecutor, TwoPcOutcome};
use std::sync::Arc;
use txn_substrate::{FailurePlan, KvProgram, MultiDatabase, ProgramRegistry, Value};

const SITES: [&str; 3] = ["site_a", "site_b", "site_c"];
const KEYS: [&str; 3] = ["x", "y", "z"];

fn fed() -> Arc<MultiDatabase> {
    let fed = MultiDatabase::new(0);
    for s in SITES {
        fed.add_database(s);
    }
    fed
}

fn global_txn() -> GlobalTxn {
    GlobalTxn {
        name: "g".into(),
        sites: SITES
            .iter()
            .zip(KEYS)
            .map(|(db, key)| SiteWrites {
                db: (*db).to_string(),
                writes: vec![(key.to_string(), Value::Int(1))],
            })
            .collect(),
    }
}

/// The same business intent as [`global_txn`], as a saga: one
/// compensatable step per site.
fn saga_over_sites(registry: &ProgramRegistry) -> atm::SagaSpec {
    let mut steps = Vec::new();
    for (db, key) in SITES.iter().zip(KEYS) {
        let forward = format!("write_{db}");
        let comp = format!("undo_{db}");
        registry.register(Arc::new(
            KvProgram::write(&forward, db, key, 1i64).with_label(db),
        ));
        registry.register(Arc::new(KvProgram::delete(&comp, db, key)));
        steps.push(StepSpec::compensatable(db, &forward, &comp));
    }
    atm::SagaSpec::linear("sites", steps)
}

/// Values of the three keys across the three sites.
fn state(fed: &Arc<MultiDatabase>) -> Vec<Option<i64>> {
    SITES
        .iter()
        .zip(KEYS)
        .map(|(db, key)| fed.db(db).unwrap().peek(key).and_then(|v| v.as_int()))
        .collect()
}

#[test]
fn twopc_goes_heuristic_where_the_saga_stays_consistent() {
    // site_b refuses its commit in both worlds.
    // --- 2PC world ---
    let fed_2pc = fed();
    fed_2pc
        .injector()
        .set_plan("site_b/commit", FailurePlan::Always);
    let res = TwoPcExecutor::new(Arc::clone(&fed_2pc)).run(&global_txn());
    assert!(matches!(res.outcome, TwoPcOutcome::Heuristic { .. }));
    let s = state(&fed_2pc);
    assert_eq!(s, vec![Some(1), None, Some(1)], "torn global state");

    // --- saga world (same failure: site_b's forward step aborts) ---
    let fed_saga = fed();
    let registry = Arc::new(ProgramRegistry::new());
    let spec = saga_over_sites(&registry);
    fed_saga.injector().set_plan("site_b", FailurePlan::Always);
    let exec = atm::SagaExecutor::new(Arc::clone(&fed_saga), registry);
    let out = exec.run(&spec).unwrap();
    assert!(!out.is_committed());
    let s = state(&fed_saga);
    assert_eq!(
        s,
        vec![None, None, None],
        "saga backed out site_a; nothing torn"
    );
}

#[test]
fn saga_commits_where_twopc_would_have_blocked() {
    // site_c is down when its turn comes. 2PC blocks (and in our
    // implementation gives up); the saga observes an abort at the
    // site_c step and compensates — a *defined* outcome either way.
    let fed_2pc = fed();
    let exec2pc = TwoPcExecutor::new(Arc::clone(&fed_2pc));
    let res = exec2pc.run_with_probe(&global_txn(), || {
        fed_2pc.db("site_a").unwrap().set_down(true);
    });
    assert!(matches!(res.outcome, TwoPcOutcome::Blocked { .. }));

    let fed_saga = fed();
    let registry = Arc::new(ProgramRegistry::new());
    let spec = saga_over_sites(&registry);
    fed_saga.db("site_c").unwrap().set_down(true);
    let exec = atm::SagaExecutor::new(Arc::clone(&fed_saga), registry);
    let out = exec.run(&spec).unwrap();
    assert!(!out.is_committed(), "saga aborted cleanly");
    assert_eq!(state(&fed_saga)[0], None, "site_a write compensated");
    assert_eq!(state(&fed_saga)[1], None, "site_b write compensated");
}

#[test]
fn both_commit_on_the_happy_path() {
    let fed_2pc = fed();
    let res = TwoPcExecutor::new(Arc::clone(&fed_2pc)).run(&global_txn());
    assert_eq!(res.outcome, TwoPcOutcome::Committed);
    assert_eq!(state(&fed_2pc), vec![Some(1), Some(1), Some(1)]);

    let fed_saga = fed();
    let registry = Arc::new(ProgramRegistry::new());
    let spec = saga_over_sites(&registry);
    let exec = atm::SagaExecutor::new(Arc::clone(&fed_saga), registry);
    assert!(exec.run(&spec).unwrap().is_committed());
    assert_eq!(state(&fed_saga), vec![Some(1), Some(1), Some(1)]);
}
