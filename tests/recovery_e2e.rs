//! Forward recovery across the whole stack (§3.3: "the process
//! execution is resumed from the point where the failure occurred"):
//! crash the engine after every navigation step while it runs an
//! Exotica-translated process, recover from the journal **against the
//! same (durable) databases**, resume — the final outcome and database
//! state must match an uninterrupted run. The activity in flight at
//! the crash may execute twice (the paper's documented caveat:
//! workflow activities are not failure atomic and are re-executed from
//! the beginning); the fixture programs are idempotent writes, exactly
//! the book-keeping the paper says the designer must provide.

use atm::fixtures;
use std::sync::Arc;
use txn_substrate::{FailurePlan, MultiDatabase, ProgramRegistry};
use wftx::engine::{recover_from, Engine, InstanceStatus, Journal, OrgModel};
use wftx::model::Container;

/// Runs `def` for `steps` navigation steps on a fresh world, crashes,
/// recovers on the same federation, completes, and returns
/// (federation, final output container, total steps available).
fn crash_and_recover(
    def: &wftx::model::ProcessDefinition,
    install: impl Fn(&Arc<MultiDatabase>, &ProgramRegistry),
    plans: &[(&str, FailurePlan)],
    steps: usize,
) -> (Arc<MultiDatabase>, Container, bool) {
    let fed = MultiDatabase::new(0);
    let registry = Arc::new(ProgramRegistry::new());
    install(&fed, &registry);
    for (label, plan) in plans {
        fed.injector().set_plan(label, plan.clone());
    }

    let engine = Engine::new(Arc::clone(&fed), Arc::clone(&registry));
    engine.register(def.clone()).unwrap();
    let id = engine.start(&def.name, Container::empty()).unwrap();
    let mut exhausted = false;
    for _ in 0..steps {
        if !engine.step(id).unwrap() {
            exhausted = true;
            break;
        }
    }
    let events = engine.journal_events();
    engine.crash();

    // Recover against the SAME federation: local databases are
    // durable, autonomous systems that survive an engine crash.
    let engine2 = recover_from(
        Journal::new(),
        events,
        vec![def.clone()],
        OrgModel::new(),
        Arc::clone(&fed),
        registry,
    )
    .unwrap();
    let status = engine2.run_to_quiescence(id).unwrap();
    assert_eq!(status, InstanceStatus::Finished);
    let out = engine2.output(id).unwrap();
    (fed, out, exhausted)
}

#[test]
fn saga_crash_after_every_step_compensating_run() {
    let n = 4;
    let def = exotica::translate_saga(&fixtures::linear_saga("rsaga", n)).unwrap();
    let plans = [("S3", FailurePlan::Always)];
    for steps in 0..40 {
        let (fed, out, exhausted) = crash_and_recover(
            &def,
            |fed, reg| fixtures::register_saga_programs(fed, reg, n),
            &plans,
            steps,
        );
        assert_eq!(
            out.get("Committed").and_then(|v| v.as_int()),
            Some(0),
            "steps={steps}: saga must still end compensated"
        );
        assert_eq!(fixtures::marker(&fed, "S1"), Some(-1), "steps={steps}");
        assert_eq!(fixtures::marker(&fed, "S2"), Some(-1), "steps={steps}");
        assert_eq!(fixtures::marker(&fed, "S3"), None, "steps={steps}");
        assert_eq!(fixtures::marker(&fed, "S4"), None, "steps={steps}");
        if exhausted {
            return; // covered every crash point
        }
    }
    panic!("run never quiesced within the step budget");
}

#[test]
fn saga_crash_after_every_step_successful_run() {
    let n = 3;
    let def = exotica::translate_saga(&fixtures::linear_saga("rsaga", n)).unwrap();
    for steps in 0..40 {
        let (fed, out, exhausted) = crash_and_recover(
            &def,
            |fed, reg| fixtures::register_saga_programs(fed, reg, n),
            &[],
            steps,
        );
        assert_eq!(
            out.get("Committed").and_then(|v| v.as_int()),
            Some(1),
            "steps={steps}"
        );
        for i in 1..=n {
            assert_eq!(
                fixtures::marker(&fed, &format!("S{i}")),
                Some(1),
                "steps={steps} S{i}"
            );
        }
        if exhausted {
            return;
        }
    }
    panic!("run never quiesced within the step budget");
}

#[test]
fn flex_crash_after_every_step_t8_failure_run() {
    let def = exotica::translate_flex(&fixtures::figure3_spec()).unwrap();
    let plans = [("T8", FailurePlan::Always)];
    for steps in 0..60 {
        let (fed, out, exhausted) =
            crash_and_recover(&def, fixtures::register_figure3_programs, &plans, steps);
        assert_eq!(
            out.get("Committed").and_then(|v| v.as_int()),
            Some(1),
            "steps={steps}: must commit via p2"
        );
        assert_eq!(fixtures::marker(&fed, "T5"), Some(-1), "steps={steps}");
        assert_eq!(fixtures::marker(&fed, "T6"), Some(-1), "steps={steps}");
        assert_eq!(fixtures::marker(&fed, "T7"), Some(1), "steps={steps}");
        if exhausted {
            return;
        }
    }
    panic!("run never quiesced within the step budget");
}

/// Recovery of a complete journal is a no-op: nothing re-executes and
/// no new events are journalled.
#[test]
fn recovery_of_a_complete_journal_is_a_no_op() {
    let n = 3;
    let fed = MultiDatabase::new(0);
    let registry = Arc::new(ProgramRegistry::new());
    fixtures::register_saga_programs(&fed, &registry, n);
    let def = exotica::translate_saga(&fixtures::linear_saga("rsaga", n)).unwrap();
    let engine = Engine::new(Arc::clone(&fed), Arc::clone(&registry));
    engine.register(def.clone()).unwrap();
    let id = engine.start("rsaga", Container::empty()).unwrap();
    engine.run_to_quiescence(id).unwrap();
    let events = engine.journal_events();
    let writes_before = fed.db("saga_db").unwrap().stats().writes;
    engine.crash();

    let engine2 = recover_from(
        Journal::new(),
        events.clone(),
        vec![def],
        OrgModel::new(),
        Arc::clone(&fed),
        registry,
    )
    .unwrap();
    assert_eq!(engine2.status(id).unwrap(), InstanceStatus::Finished);
    engine2.run_to_quiescence(id).unwrap();
    assert_eq!(
        fed.db("saga_db").unwrap().stats().writes,
        writes_before,
        "no re-execution"
    );
    assert_eq!(engine2.journal_events().len(), events.len());
}

/// One activity may run twice across a crash — and only the one that
/// was in flight. Crash exactly while S2 is running.
#[test]
fn in_flight_activity_reexecutes_exactly_once() {
    let n = 3;
    let fed = MultiDatabase::new(0);
    let registry = Arc::new(ProgramRegistry::new());
    fixtures::register_saga_programs(&fed, &registry, n);
    let def = exotica::translate_saga(&fixtures::linear_saga("rsaga", n)).unwrap();
    let engine = Engine::new(Arc::clone(&fed), Arc::clone(&registry));
    engine.register(def.clone()).unwrap();
    let id = engine.start("rsaga", Container::empty()).unwrap();
    engine.run_to_quiescence(id).unwrap();
    let events = engine.journal_events();
    engine.crash();

    // Truncate the journal to just after S2 started.
    let cut = events
        .iter()
        .position(
            |e| matches!(e, wftx::engine::Event::ActivityStarted { path, .. } if path == "Forward/S2"),
        )
        .unwrap()
        + 1;

    // Same durable federation; S1 and S2 already committed there (S2's
    // transaction committed before the crash — the engine just never
    // saw the notification, the paper's "totally executed but the WFMS
    // had not been notified" case).
    let engine2 = recover_from(
        Journal::new(),
        events[..cut].to_vec(),
        vec![def],
        OrgModel::new(),
        Arc::clone(&fed),
        Arc::clone(&registry),
    )
    .unwrap();
    assert_eq!(
        engine2.run_to_quiescence(id).unwrap(),
        InstanceStatus::Finished
    );
    // S2 ran twice in total (once before the crash, once after):
    // idempotent write, same final state. Every other activity ran
    // exactly once.
    let by_activity = wftx::engine::audit::executions_by_activity(&engine2.journal_events(), id);
    assert_eq!(
        by_activity["Forward/S2"], 2,
        "re-executed once after recovery"
    );
    assert_eq!(by_activity["Forward/S1"], 1);
    assert_eq!(by_activity["Forward/S3"], 1);
    for i in 1..=n {
        assert_eq!(fixtures::marker(&fed, &format!("S{i}")), Some(1));
    }
}
