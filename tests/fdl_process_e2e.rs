//! FDL as a user-facing format: a hand-written process definition —
//! blocks, conditions, data flow, staff — imported and executed
//! directly, with no translator involved.

use std::sync::Arc;
use txn_substrate::{MultiDatabase, ProgramOutcome, ProgramRegistry, Value};
use wftx::engine::{audit, Engine, EngineConfig, InstanceStatus, OrgModel};
use wftx::model::Container;

const PROCESS: &str = r#"
-- An expense-approval process, written directly in FDL.
PROCESS expense_approval VERSION 2
  DESCRIPTION "approve and pay an expense claim"
  INPUT  ( amount: INT, claimant: STRING )
  OUTPUT ( paid: INT, audit_note: STRING )

  ACTIVITY Validate PROGRAM "validate_claim"
    INPUT  ( amount: INT )
    OUTPUT ( ok: INT, note: STRING )
  END

  -- Claims above the limit need a manager; below, any clerk.
  ACTIVITY ClerkApproval PROGRAM "approve"
    INPUT ( amount: INT )
    ROLE "clerk"
    DEADLINE 48
  END

  ACTIVITY ManagerApproval PROGRAM "approve"
    INPUT ( amount: INT )
    ROLE "manager"
    DEADLINE 24
  END

  -- Payment is a block with a retriable transfer inside.
  BLOCK Payment
    START OR
    OUTPUT ( RC: INT )
    ACTIVITY Transfer PROGRAM "transfer"
      EXIT WHEN "RC = 1"
    END
    DATA FROM Transfer.OUTPUT TO PROCESS.OUTPUT MAP RC -> RC
  END

  CONTROL FROM Validate TO ClerkApproval   WHEN "ok = 1 AND RC = 1"
  CONTROL FROM Validate TO ManagerApproval WHEN "ok = 2 AND RC = 1"
  CONTROL FROM ClerkApproval   TO Payment WHEN "RC = 1"
  CONTROL FROM ManagerApproval TO Payment WHEN "RC = 1"

  DATA FROM PROCESS.INPUT TO Validate.INPUT        MAP amount -> amount
  DATA FROM PROCESS.INPUT TO ClerkApproval.INPUT   MAP amount -> amount
  DATA FROM PROCESS.INPUT TO ManagerApproval.INPUT MAP amount -> amount
  DATA FROM Validate.OUTPUT TO PROCESS.OUTPUT      MAP note -> audit_note
  DATA FROM Payment.OUTPUT  TO PROCESS.OUTPUT      MAP RC -> paid
END
"#;

fn world() -> (Arc<MultiDatabase>, Arc<ProgramRegistry>) {
    let fed = MultiDatabase::new(0);
    fed.add_database("ledger");
    let registry = Arc::new(ProgramRegistry::new());
    registry.register_fn("validate_claim", |ctx| {
        let amount = ctx
            .params
            .get("amount")
            .and_then(|v| v.as_int())
            .unwrap_or(0);
        // ok = 1 → clerk route; ok = 2 → manager route.
        let ok = if amount <= 100 { 1 } else { 2 };
        ProgramOutcome::Committed {
            rc: 1,
            outputs: [
                ("ok".to_string(), Value::Int(ok)),
                (
                    "note".to_string(),
                    Value::from(format!("validated amount {amount}")),
                ),
            ]
            .into_iter()
            .collect(),
        }
    });
    registry.register_fn("approve", |_| ProgramOutcome::committed());
    registry.register(Arc::new(txn_substrate::KvProgram::write(
        "transfer", "ledger", "paid", 1i64,
    )));
    (fed, registry)
}

fn run(amount: i64) -> (Engine, wftx::engine::InstanceId, &'static str) {
    let def = wftx::fdl::parse_and_validate(PROCESS).expect("FDL imports");
    let (fed, registry) = world();
    let org =
        OrgModel::new()
            .person("grace", &["manager"])
            .person_under("ann", &["clerk"], "grace", 2);
    let engine = Engine::with_config(
        fed,
        registry,
        EngineConfig {
            org,
            ..EngineConfig::default()
        },
    );
    engine.register(def).unwrap();
    let mut input = Container::empty();
    input.set("amount", Value::Int(amount));
    input.set("claimant", Value::from("dana"));
    let id = engine.start("expense_approval", input).unwrap();
    engine.run_to_quiescence(id).unwrap();
    let approver = if amount <= 100 { "ann" } else { "grace" };
    (engine, id, approver)
}

#[test]
fn small_claim_routes_to_the_clerk() {
    let (engine, id, approver) = run(40);
    assert_eq!(approver, "ann");
    assert_eq!(engine.worklist("ann").len(), 1);
    assert!(engine.worklist("grace").is_empty());
    let item = engine.worklist("ann")[0].id;
    engine.execute_item(item, "ann").unwrap();
    assert_eq!(engine.status(id).unwrap(), InstanceStatus::Finished);
    let out = engine.output(id).unwrap();
    assert_eq!(out.get("paid"), Some(&Value::Int(1)));
    assert_eq!(
        out.get("audit_note"),
        Some(&Value::from("validated amount 40"))
    );
    // The manager branch was dead-path-eliminated, payment still ran
    // (OR-join on the Payment block).
    let s = audit::summarize(&engine.journal_events(), id);
    assert_eq!(s.eliminated, 1);
}

#[test]
fn large_claim_routes_to_the_manager() {
    let (engine, id, approver) = run(5000);
    assert_eq!(approver, "grace");
    assert!(engine.worklist("ann").is_empty());
    let item = engine.worklist("grace")[0].id;
    engine.execute_item(item, "grace").unwrap();
    let out = engine.output(id).unwrap();
    assert_eq!(out.get("paid"), Some(&Value::Int(1)));
}

#[test]
fn fdl_round_trips_the_hand_written_process() {
    let def = wftx::fdl::parse_and_validate(PROCESS).unwrap();
    let emitted = wftx::fdl::emit(&def);
    let back = wftx::fdl::parse_and_validate(&emitted).unwrap();
    assert_eq!(back, def);
    // And it renders to DOT for documentation.
    let dot = wftx::model::to_dot(&def);
    assert!(dot.contains("subgraph cluster_Payment"));
}
