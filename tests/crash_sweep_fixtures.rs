//! The paper's fixtures under the exhaustive crash-point sweep: the
//! linear saga (Figure 2 translation) and the Figure 3 flexible
//! transaction must recover correctly from a crash after **every**
//! journal event — not just the step-granularity samples in
//! `recovery_e2e.rs`. Each sweep also writes a torn half-serialized
//! event after the surviving prefix, so the journal reopen exercises
//! torn-tail truncation at every point.
//!
//! These are the runs `fmtm crashtest --quick` replays in CI.

use atm::fixtures;
use std::sync::Arc;
use txn_substrate::{FailurePlan, MultiDatabase, ProgramRegistry};
use wftx::engine::crashtest::{sweep, SweepConfig};
use wftx::model::Container;

fn saga_world(
    n: usize,
    plans: &'static [(&'static str, FailurePlan)],
) -> impl Fn() -> (Arc<MultiDatabase>, Arc<ProgramRegistry>) {
    move || {
        let fed = MultiDatabase::new(0);
        let registry = Arc::new(ProgramRegistry::new());
        fixtures::register_saga_programs(&fed, &registry, n);
        for (label, plan) in plans {
            fed.injector().set_plan(label, plan.clone());
        }
        (fed, registry)
    }
}

fn flex_world(
    plans: &'static [(&'static str, FailurePlan)],
) -> impl Fn() -> (Arc<MultiDatabase>, Arc<ProgramRegistry>) {
    move || {
        let fed = MultiDatabase::new(0);
        let registry = Arc::new(ProgramRegistry::new());
        fixtures::register_figure3_programs(&fed, &registry);
        for (label, plan) in plans {
            fed.injector().set_plan(label, plan.clone());
        }
        (fed, registry)
    }
}

#[test]
fn saga_successful_run_survives_every_crash_point() {
    let n = 4;
    let def = exotica::translate_saga(&fixtures::linear_saga("rsaga", n)).unwrap();
    let report = sweep(
        "saga-success",
        &[def],
        &[("rsaga".to_owned(), Container::empty())],
        &saga_world(n, &[]),
        &SweepConfig::default(),
    )
    .unwrap();
    assert!(report.ok(), "{}\n{:#?}", report.summary(), report.failures);
    assert_eq!(report.passed, report.total_events + 1);
}

#[test]
fn saga_compensating_run_survives_every_crash_point() {
    let n = 4;
    let def = exotica::translate_saga(&fixtures::linear_saga("rsaga", n)).unwrap();
    let report = sweep(
        "saga-compensating",
        &[def],
        &[("rsaga".to_owned(), Container::empty())],
        &saga_world(n, &[("S3", FailurePlan::Always)]),
        &SweepConfig::default(),
    )
    .unwrap();
    assert!(report.ok(), "{}\n{:#?}", report.summary(), report.failures);
}

#[test]
fn flex_successful_run_survives_every_crash_point() {
    let def = exotica::translate_flex(&fixtures::figure3_spec()).unwrap();
    let report = sweep(
        "flex-success",
        &[def],
        &[("figure3".to_owned(), Container::empty())],
        &flex_world(&[]),
        &SweepConfig::default(),
    )
    .unwrap();
    assert!(report.ok(), "{}\n{:#?}", report.summary(), report.failures);
}

/// T8 always refuses: the preferred path p1 fails at its last pivot,
/// T5/T6 are compensated and the run commits via p2 (T7). The richest
/// recovery surface in the fixture set — compensation blocks, dead
/// path elimination and retriable loops all in flight at some crash
/// point.
#[test]
fn flex_t8_failure_run_survives_every_crash_point() {
    let def = exotica::translate_flex(&fixtures::figure3_spec()).unwrap();
    let report = sweep(
        "flex-t8-failure",
        &[def],
        &[("figure3".to_owned(), Container::empty())],
        &flex_world(&[("T8", FailurePlan::Always)]),
        &SweepConfig::default(),
    )
    .unwrap();
    assert!(report.ok(), "{}\n{:#?}", report.summary(), report.failures);
}

/// Two sagas racing on the same federation — a crash can strand one
/// instance mid-compensation while the other has not even started.
#[test]
fn two_interleaved_sagas_survive_every_crash_point() {
    let n = 3;
    let def = exotica::translate_saga(&fixtures::linear_saga("rsaga", n)).unwrap();
    let report = sweep(
        "saga-pair",
        &[def],
        &[
            ("rsaga".to_owned(), Container::empty()),
            ("rsaga".to_owned(), Container::empty()),
        ],
        &saga_world(n, &[("S2", FailurePlan::Always)]),
        &SweepConfig::default(),
    )
    .unwrap();
    assert!(report.ok(), "{}\n{:#?}", report.summary(), report.failures);
}
