#!/usr/bin/env bash
# Golden-diff the machine-readable linter output: for each JSON file in
# ci/golden/, run `fmtm lint --format json` on the matching analyzer
# fixture and diff against the committed output. Catches accidental
# changes to diagnostic codes, positions, or message wording — the
# JSON schema is an interface consumed by editor integrations.
set -euo pipefail
cd "$(dirname "$0")/.."

FMTM=${FMTM:-"cargo run -q --release -p exotica --bin fmtm --"}
FIXTURES=crates/exotica/tests/fixtures/analyzer
fail=0

for golden in ci/golden/*.json; do
  stem=$(basename "$golden" .json)
  fixture=$(ls "$FIXTURES/$stem".* 2>/dev/null | head -1)
  if [ -z "$fixture" ]; then
    echo "::error::no fixture matches golden $golden"
    fail=1
    continue
  fi
  # lint exits 1 on findings by design; the diff is the verdict here.
  actual=$($FMTM lint "$fixture" --format json || true)
  if ! diff <(echo "$actual") "$golden" >/dev/null; then
    echo "::error::lint JSON drifted for $fixture"
    diff <(echo "$actual") "$golden" || true
    fail=1
  else
    echo "ok: $fixture matches $golden"
  fi
done

exit $fail
