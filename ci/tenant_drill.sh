#!/usr/bin/env bash
# Tenant-isolation drill: two tenants on one server, one of them hot.
#
# 1. Start `fmtm serve --tenants` with a quiet tenant (generous quota,
#    weight 4) and a hot tenant (quota 4, weight 1), plus a throttled
#    worker so the hot tenant is genuinely saturated.
# 2. Auth taxonomy over the wire: no key and a wrong key answer `401`
#    (with `WWW-Authenticate` and `Connection: close`); the ops plane
#    stays keyless.
# 3. Drive the hot tenant open-loop far past its quota while the quiet
#    tenant runs a closed-loop cohort. The quiet tenant must complete
#    100% with zero 429s and zero transport errors; the hot tenant
#    must see 429s (with `Retry-After`) and zero transport errors.
# 4. Cross-tenant isolation: the hot key reading a quiet instance is
#    `403`; per-tenant counters appear in `/metrics`.
# 5. kill -9, restart on the same data directory: every accepted id
#    verifies finished *under its own tenant's key*, and tenant
#    ownership survives recovery (cross-tenant reads still `403`).
# 6. Hot reload: rotate the hot tenant's key on disk, then
#    `POST /admin/reload-tenants` — the old key dies, the rotated key
#    reaches the tenant's recovered instances.
#
# Artifacts (server logs, load reports, id lists, metrics snapshots)
# land in $ART for CI upload. Exits non-zero on any isolation breach.
set -euo pipefail

cd "$(dirname "$0")/.."

FMTM=target/release/fmtm
PORT="${DRILL_PORT:-7423}"
URL="127.0.0.1:${PORT}"
ART="${DRILL_ART:-tenant-drill-artifacts}"
DATA="$(mktemp -d)"
SERVE_PID=""

mkdir -p "$ART"

cleanup() {
  status=$?
  if [ "$status" -ne 0 ]; then
    # Failure: snapshot whatever state helps the post-mortem before
    # the temp directory vanishes.
    echo "drill: FAILED (exit $status) — capturing state" >&2
    curl -s "http://$URL/metrics" >"$ART/metrics-on-failure.txt" 2>/dev/null || true
    ls -la "$DATA" >"$ART/data-dir-on-failure.txt" 2>/dev/null || true
  fi
  if [ -n "$SERVE_PID" ] && kill -0 "$SERVE_PID" 2>/dev/null; then
    kill -9 "$SERVE_PID" 2>/dev/null || true
  fi
  rm -rf "$DATA"
  exit "$status"
}
trap cleanup EXIT

if [ ! -x "$FMTM" ]; then
  cargo build --release -p exotica --bin fmtm
fi

TENANTS="$DATA/tenants.json"
cat >"$TENANTS" <<'EOF'
{"tenants":[
  {"name":"quiet","key":"k-quiet","weight":4,"max_inflight":64},
  {"name":"hot","key":"k-hot","weight":1,"max_inflight":4}
]}
EOF

echo "== phase 1: serve with two tenants and a throttled worker =="
"$FMTM" serve examples/specs/trip.saga \
  --shards 2 --port "$PORT" --data "$DATA" --tenants "$TENANTS" \
  --throttle-ms 5 >"$ART/serve-1.log" 2>&1 &
SERVE_PID=$!

"$FMTM" load --url "$URL" --wait-ready 30 --api-key k-quiet --count 1 \
  >/dev/null

echo "== phase 2: auth taxonomy over the wire =="
NOKEY=$(curl -s -o /dev/null -w '%{http_code}' -X POST \
  -d '{}' "http://$URL/instances")
if [ "$NOKEY" != "401" ]; then
  echo "drill: submit without a key answered $NOKEY, want 401" >&2
  exit 1
fi
curl -s -i -X POST -d '{}' "http://$URL/instances" >"$ART/401-headers.txt"
if ! grep -qi '^www-authenticate: *bearer' "$ART/401-headers.txt"; then
  echo "drill: 401 without WWW-Authenticate" >&2
  exit 1
fi
if ! grep -qi '^connection: *close' "$ART/401-headers.txt"; then
  echo "drill: 401 without Connection: close" >&2
  exit 1
fi
BADKEY=$(curl -s -o /dev/null -w '%{http_code}' -X POST \
  -H 'Authorization: Bearer wrong' -d '{}' "http://$URL/instances")
if [ "$BADKEY" != "401" ]; then
  echo "drill: submit with a wrong key answered $BADKEY, want 401" >&2
  exit 1
fi
OPS=$(curl -s -o /dev/null -w '%{http_code}' "http://$URL/healthz")
if [ "$OPS" != "200" ]; then
  echo "drill: keyless /healthz answered $OPS, want 200" >&2
  exit 1
fi

echo "== phase 3: hot tenant open-loop past quota, quiet tenant closed-loop =="
# 16 connections against a quota of 4: even when the schedule lags,
# up to 16 submissions race the admission check at once, so the quota
# must reject some of them.
"$FMTM" load --url "$URL" --api-key k-hot --duration 6 --rps 2000 \
  --open-loop --connections 16 --ids-out "$ART/ids-hot.txt" \
  >"$ART/load-hot.txt" 2>&1 &
HOT_PID=$!
sleep 1 # let the hot tenant saturate its quota first

"$FMTM" load --url "$URL" --api-key k-quiet --count 100 --rps 200 \
  --connections 4 --ids-out "$ART/ids-quiet.txt" | tee "$ART/load-quiet.txt"

# While the hot tenant is still hammering: a fresh hot submit must be
# quota-rejected with Retry-After. (Quota 4 against a 2000 rps offered
# rate — slack is momentary at best, so a short probe loop suffices.)
SAW_RETRY_AFTER=""
for _ in $(seq 1 100); do
  curl -s -i -X POST -H 'Authorization: Bearer k-hot' \
    -d '{}' "http://$URL/instances" >"$ART/hot-429.txt" || true
  if grep -q ' 429 ' "$ART/hot-429.txt"; then
    if grep -qi '^retry-after:' "$ART/hot-429.txt"; then
      SAW_RETRY_AFTER=yes
    fi
    break
  fi
done

wait "$HOT_PID"
cat "$ART/load-hot.txt"

parse() { # parse FIELD FILE — pull a count off the `load:` line
  case "$1" in
    sent)       sed -n 's/^load: \([0-9]*\) sent.*/\1/p' "$2" ;;
    accepted)   sed -n 's/^load: .* \([0-9]*\) accepted.*/\1/p' "$2" ;;
    overloaded) sed -n 's/^load: .* \([0-9]*\) overloaded.*/\1/p' "$2" ;;
    errors)     sed -n 's/^load: .* \([0-9]*\) errors.*/\1/p' "$2" ;;
  esac
}

Q_SENT=$(parse sent "$ART/load-quiet.txt")
Q_ACC=$(parse accepted "$ART/load-quiet.txt")
Q_OVER=$(parse overloaded "$ART/load-quiet.txt")
Q_ERR=$(parse errors "$ART/load-quiet.txt")
H_OVER=$(parse overloaded "$ART/load-hot.txt")
H_ERR=$(parse errors "$ART/load-hot.txt")
H_ACC=$(parse accepted "$ART/load-hot.txt")

if [ -z "$Q_SENT" ] || [ "$Q_ACC" != "$Q_SENT" ] || [ "$Q_OVER" != "0" ] || [ "$Q_ERR" != "0" ]; then
  echo "drill: quiet tenant was not isolated (sent=$Q_SENT accepted=$Q_ACC overloaded=$Q_OVER errors=$Q_ERR)" >&2
  exit 1
fi
if [ -z "$H_OVER" ] || [ "$H_OVER" -eq 0 ]; then
  echo "drill: hot tenant saw no 429s past its quota (overloaded=$H_OVER)" >&2
  exit 1
fi
if [ -z "$H_ERR" ] || [ "$H_ERR" -ne 0 ]; then
  echo "drill: transport errors on the hot tenant: $H_ERR" >&2
  exit 1
fi
if [ -z "$H_ACC" ] || [ "$H_ACC" -eq 0 ]; then
  echo "drill: hot tenant made no progress at all (accepted=$H_ACC)" >&2
  exit 1
fi
if [ -z "$SAW_RETRY_AFTER" ]; then
  echo "drill: no 429 with Retry-After observed on the hot tenant" >&2
  exit 1
fi
echo "drill: quiet $Q_ACC/$Q_SENT clean; hot $H_ACC accepted, $H_OVER quota-rejected"

echo "== phase 4: cross-tenant isolation + per-tenant metrics =="
QUIET_ID=$(head -1 "$ART/ids-quiet.txt")
CROSS=$(curl -s -o /dev/null -w '%{http_code}' \
  -H 'Authorization: Bearer k-hot' "http://$URL/instances/$QUIET_ID")
if [ "$CROSS" != "403" ]; then
  echo "drill: hot key read quiet instance $QUIET_ID: $CROSS, want 403" >&2
  exit 1
fi
OWN=$(curl -s -o /dev/null -w '%{http_code}' \
  -H 'Authorization: Bearer k-quiet' "http://$URL/instances/$QUIET_ID")
if [ "$OWN" != "200" ]; then
  echo "drill: quiet key cannot read its own instance: $OWN" >&2
  exit 1
fi
curl -s "http://$URL/metrics" >"$ART/metrics-1.txt"
for family in \
  'server_tenant_accepted{tenant="quiet"}' \
  'server_tenant_accepted{tenant="hot"}' \
  'server_tenant_overloaded{tenant="hot"}'; do
  if ! grep -qF "$family" "$ART/metrics-1.txt"; then
    echo "drill: /metrics missing $family" >&2
    exit 1
  fi
done

echo "== phase 5: kill -9 and recover per-tenant ids under the right keys =="
kill -9 "$SERVE_PID"
wait "$SERVE_PID" 2>/dev/null || true
SERVE_PID=""

"$FMTM" serve examples/specs/trip.saga \
  --shards 2 --port "$PORT" --data "$DATA" --tenants "$TENANTS" \
  >"$ART/serve-2.log" 2>&1 &
SERVE_PID=$!

# Every acknowledged id must verify finished under its own key.
"$FMTM" load --url "$URL" --wait-ready 30 --api-key k-quiet \
  --verify "$ART/ids-quiet.txt" --verify-timeout 60 | tee "$ART/verify-quiet.txt"
"$FMTM" load --url "$URL" --api-key k-hot \
  --verify "$ART/ids-hot.txt" --verify-timeout 60 | tee "$ART/verify-hot.txt"

# Ownership survives recovery: the cross-tenant read is still 403.
CROSS2=$(curl -s -o /dev/null -w '%{http_code}' \
  -H 'Authorization: Bearer k-hot' "http://$URL/instances/$QUIET_ID")
if [ "$CROSS2" != "403" ]; then
  echo "drill: cross-tenant read answered $CROSS2 after restart, want 403" >&2
  exit 1
fi

echo "== phase 6: hot key rotation over /admin/reload-tenants =="
HOT_ID=$(head -1 "$ART/ids-hot.txt")
cat >"$TENANTS" <<'EOF'
{"tenants":[
  {"name":"quiet","key":"k-quiet","weight":4,"max_inflight":64},
  {"name":"hot","key":"rotated","weight":1,"max_inflight":4}
]}
EOF
RELOAD=$(curl -s -o "$ART/reload.txt" -w '%{http_code}' -X POST \
  "http://$URL/admin/reload-tenants")
if [ "$RELOAD" != "200" ]; then
  echo "drill: reload-tenants answered $RELOAD: $(cat "$ART/reload.txt")" >&2
  exit 1
fi
OLDKEY=$(curl -s -o /dev/null -w '%{http_code}' \
  -H 'Authorization: Bearer k-hot' "http://$URL/instances/$HOT_ID")
NEWKEY=$(curl -s -o /dev/null -w '%{http_code}' \
  -H 'Authorization: Bearer rotated' "http://$URL/instances/$HOT_ID")
if [ "$OLDKEY" != "401" ] || [ "$NEWKEY" != "200" ]; then
  echo "drill: key rotation failed (old=$OLDKEY want 401, new=$NEWKEY want 200)" >&2
  exit 1
fi

curl -s "http://$URL/metrics" >"$ART/metrics-2.txt"
"$FMTM" load --url "$URL" --stop
wait "$SERVE_PID" 2>/dev/null || true
SERVE_PID=""

echo "drill: ok (quiet $Q_ACC/$Q_SENT clean under a hot neighbour; $H_OVER hot 429s with Retry-After; per-tenant ids recovered under their own keys; key rotation live)"
