#!/usr/bin/env bash
# Serve smoke + crash-restart drill.
#
# 1. Start `fmtm serve` (2 shards), drive ~200 submissions through
#    `fmtm load`, record every accepted instance id.
# 2. kill -9 the server mid-flight, restart it on the same data
#    directory, and assert every previously-accepted instance is
#    recovered and reaches `finished` — the ACK-implies-durable
#    guarantee of the group-commit path.
# 3. Separately, assert admission control: with a tiny queue and a
#    throttled worker, a burst must see explicit `overloaded` answers
#    and zero transport errors.
# 4. Before the kill, hold the server at a fixed open-loop arrival
#    rate (latency clocked from each request's scheduled send, the
#    schedule never resets) and assert zero transport errors — the
#    event-loop front end must absorb a steady offered rate without
#    dropping connections.
# 5. Redeploy drill: start with a v1 spec, submit, deploy an edited
#    v2 over HTTP (drain-old), kill -9, restart with the *original*
#    v1 spec file — every v1 instance must verify finished and keep
#    its pinned v1 version hash, while fresh submissions run v2.
#
# Artifacts (server logs, load reports, id list) land in $ART for CI
# upload. Exits non-zero on any lost instance or drill failure.
set -euo pipefail

cd "$(dirname "$0")/.."

FMTM=target/release/fmtm
PORT="${DRILL_PORT:-7413}"
URL="127.0.0.1:${PORT}"
ART="${DRILL_ART:-drill-artifacts}"
DATA="$(mktemp -d)"
SERVE_PID=""

mkdir -p "$ART"

cleanup() {
  status=$?
  if [ "$status" -ne 0 ]; then
    # Failure: snapshot whatever state helps the post-mortem before
    # the temp directory vanishes.
    echo "drill: FAILED (exit $status) — capturing state" >&2
    curl -s "http://$URL/metrics" >"$ART/metrics-on-failure.txt" 2>/dev/null || true
    ls -la "$DATA" >"$ART/data-dir-on-failure.txt" 2>/dev/null || true
  fi
  if [ -n "$SERVE_PID" ] && kill -0 "$SERVE_PID" 2>/dev/null; then
    kill -9 "$SERVE_PID" 2>/dev/null || true
  fi
  rm -rf "$DATA"
  exit "$status"
}
trap cleanup EXIT

if [ ! -x "$FMTM" ]; then
  cargo build --release -p exotica --bin fmtm
fi

echo "== phase 1: serve + load 200 =="
"$FMTM" serve examples/specs/trip.saga examples/specs/figure3.flex \
  --shards 2 --port "$PORT" --data "$DATA" >"$ART/serve-1.log" 2>&1 &
SERVE_PID=$!

"$FMTM" load --url "$URL" --wait-ready 30 --count 200 --rps 2000 \
  --connections 4 --ids-out "$ART/ids.txt" | tee "$ART/load-1.txt"

ACCEPTED=$(wc -l <"$ART/ids.txt")
if [ "$ACCEPTED" -lt 1 ]; then
  echo "drill: no accepted submissions recorded" >&2
  exit 1
fi
echo "drill: $ACCEPTED accepted ids recorded"

echo "== phase 1b: open-loop generator at a fixed 2000 rps =="
"$FMTM" load --url "$URL" --duration 3 --rps 2000 --open-loop \
  --connections 4 | tee "$ART/load-openloop.txt"
OL_ERRORS=$(sed -n 's/^load: .* overloaded, \([0-9]*\) errors.*/\1/p' "$ART/load-openloop.txt")
if [ -z "$OL_ERRORS" ] || [ "$OL_ERRORS" -ne 0 ]; then
  echo "drill: transport errors under open-loop load: ${OL_ERRORS:-unparsed}" >&2
  exit 1
fi

echo "== phase 2: kill -9 and restart on the same journals =="
kill -9 "$SERVE_PID"
wait "$SERVE_PID" 2>/dev/null || true
SERVE_PID=""

"$FMTM" serve examples/specs/trip.saga examples/specs/figure3.flex \
  --shards 2 --port "$PORT" --data "$DATA" >"$ART/serve-2.log" 2>&1 &
SERVE_PID=$!

# --verify exits 3 if any recorded id is missing or not finished.
"$FMTM" load --url "$URL" --wait-ready 30 \
  --verify "$ART/ids.txt" --verify-timeout 60 | tee "$ART/verify.txt"

# Fresh submissions after recovery must still be accepted.
"$FMTM" load --url "$URL" --count 50 --rps 2000 | tee "$ART/load-2.txt"
"$FMTM" load --url "$URL" --stop
wait "$SERVE_PID" 2>/dev/null || true
SERVE_PID=""
if ! grep -q "stopped (journals drained and checkpointed)" "$ART/serve-2.log"; then
  echo "drill: graceful stop did not drain" >&2
  exit 1
fi

echo "== phase 3: admission control under a tiny queue =="
DATA2="$(mktemp -d)"
"$FMTM" serve examples/specs/trip.saga \
  --shards 1 --port "$PORT" --data "$DATA2" \
  --queue 4 --throttle-ms 5 >"$ART/serve-3.log" 2>&1 &
SERVE_PID=$!

"$FMTM" load --url "$URL" --wait-ready 30 --count 200 --rps 5000 \
  --connections 8 | tee "$ART/load-overload.txt"
"$FMTM" load --url "$URL" --stop
wait "$SERVE_PID" 2>/dev/null || true
SERVE_PID=""
rm -rf "$DATA2"

OVERLOADED=$(sed -n 's/^load: .* accepted, \([0-9]*\) overloaded.*/\1/p' "$ART/load-overload.txt")
ERRORS=$(sed -n 's/^load: .* overloaded, \([0-9]*\) errors.*/\1/p' "$ART/load-overload.txt")
if [ -z "$OVERLOADED" ] || [ "$OVERLOADED" -eq 0 ]; then
  echo "drill: expected overloaded rejections past the high-water mark, got none" >&2
  exit 1
fi
if [ -z "$ERRORS" ] || [ "$ERRORS" -ne 0 ]; then
  echo "drill: transport errors during overload burst: $ERRORS" >&2
  exit 1
fi

echo "== phase 4: live redeploy, kill -9, restart with the v1 spec =="
DATA3="$(mktemp -d)"
"$FMTM" serve examples/specs/trip.saga \
  --shards 2 --port "$PORT" --data "$DATA3" >"$ART/serve-4.log" 2>&1 &
SERVE_PID=$!

"$FMTM" load --url "$URL" --wait-ready 30 --count 20 --rps 2000 \
  --ids-out "$ART/ids-v1.txt" | tee "$ART/load-v1.txt"
OLD_ID=$(head -1 "$ART/ids-v1.txt")

version_of() {
  curl -sf "http://$URL/instances/$1" |
    sed -n 's/.*"version":"\([0-9a-f]*\)".*/\1/p'
}
V1=$(version_of "$OLD_ID")
if [ -z "$V1" ]; then
  echo "drill: could not read the v1 version hash of instance $OLD_ID" >&2
  exit 1
fi

# The edited v2: the Car step removed — a different content hash that
# uses only programs already provisioned by the running server.
V2SPEC="$DATA3/trip_v2.saga"
cat >"$V2SPEC" <<'EOF'
SAGA trip_booking
  STEP Flight PROGRAM "book_flight" COMPENSATION "cancel_flight"
  STEP Hotel  PROGRAM "book_hotel"  COMPENSATION "cancel_hotel"
  STEP Pay    PROGRAM "charge_card" COMPENSATION "refund_card"
END
EOF

"$FMTM" deploy "$V2SPEC" --url "$URL" --policy drain-old | tee "$ART/deploy.txt"
V2=$(sed -n 's/^deployed [^@]*@\([0-9a-f]*\).*/\1/p' "$ART/deploy.txt")
if [ -z "$V2" ] || [ "$V2" = "$V1" ]; then
  echo "drill: deploy did not produce a new version (v1=$V1 v2=${V2:-unparsed})" >&2
  exit 1
fi

kill -9 "$SERVE_PID"
wait "$SERVE_PID" 2>/dev/null || true
SERVE_PID=""

# Restart with the ORIGINAL v1 spec file: stored versions load from
# the templates/ directory and the v2 default must survive the crash.
"$FMTM" serve examples/specs/trip.saga \
  --shards 2 --port "$PORT" --data "$DATA3" >"$ART/serve-5.log" 2>&1 &
SERVE_PID=$!

"$FMTM" load --url "$URL" --wait-ready 30 \
  --verify "$ART/ids-v1.txt" --verify-timeout 60 | tee "$ART/verify-v1.txt"

GOT_V1=$(version_of "$OLD_ID")
if [ "$GOT_V1" != "$V1" ]; then
  echo "drill: instance $OLD_ID lost its pinned version after redeploy+crash ($GOT_V1 != $V1)" >&2
  exit 1
fi

"$FMTM" load --url "$URL" --count 1 --rps 2000 \
  --ids-out "$ART/ids-v2.txt" | tee "$ART/load-v2.txt"
NEW_ID=$(head -1 "$ART/ids-v2.txt")
GOT_V2=$(version_of "$NEW_ID")
if [ "$GOT_V2" != "$V2" ]; then
  echo "drill: post-restart submission ran $GOT_V2, expected deployed default $V2" >&2
  exit 1
fi

"$FMTM" load --url "$URL" --stop
wait "$SERVE_PID" 2>/dev/null || true
SERVE_PID=""
rm -rf "$DATA3"

echo "drill: ok ($ACCEPTED instances survived kill -9; $OVERLOADED overloaded answers under backpressure; redeploy kept $V1 pinned and defaulted to $V2)"
