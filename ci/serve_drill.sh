#!/usr/bin/env bash
# Serve smoke + crash-restart drill.
#
# 1. Start `fmtm serve` (2 shards), drive ~200 submissions through
#    `fmtm load`, record every accepted instance id.
# 2. kill -9 the server mid-flight, restart it on the same data
#    directory, and assert every previously-accepted instance is
#    recovered and reaches `finished` — the ACK-implies-durable
#    guarantee of the group-commit path.
# 3. Separately, assert admission control: with a tiny queue and a
#    throttled worker, a burst must see explicit `overloaded` answers
#    and zero transport errors.
# 4. Before the kill, hold the server at a fixed open-loop arrival
#    rate (latency clocked from each request's scheduled send, the
#    schedule never resets) and assert zero transport errors — the
#    event-loop front end must absorb a steady offered rate without
#    dropping connections.
#
# Artifacts (server logs, load reports, id list) land in $ART for CI
# upload. Exits non-zero on any lost instance or drill failure.
set -euo pipefail

cd "$(dirname "$0")/.."

FMTM=target/release/fmtm
PORT="${DRILL_PORT:-7413}"
URL="127.0.0.1:${PORT}"
ART="${DRILL_ART:-drill-artifacts}"
DATA="$(mktemp -d)"
SERVE_PID=""

mkdir -p "$ART"

cleanup() {
  if [ -n "$SERVE_PID" ] && kill -0 "$SERVE_PID" 2>/dev/null; then
    kill -9 "$SERVE_PID" 2>/dev/null || true
  fi
  rm -rf "$DATA"
}
trap cleanup EXIT

if [ ! -x "$FMTM" ]; then
  cargo build --release -p exotica --bin fmtm
fi

echo "== phase 1: serve + load 200 =="
"$FMTM" serve examples/specs/trip.saga examples/specs/figure3.flex \
  --shards 2 --port "$PORT" --data "$DATA" >"$ART/serve-1.log" 2>&1 &
SERVE_PID=$!

"$FMTM" load --url "$URL" --wait-ready 30 --count 200 --rps 2000 \
  --connections 4 --ids-out "$ART/ids.txt" | tee "$ART/load-1.txt"

ACCEPTED=$(wc -l <"$ART/ids.txt")
if [ "$ACCEPTED" -lt 1 ]; then
  echo "drill: no accepted submissions recorded" >&2
  exit 1
fi
echo "drill: $ACCEPTED accepted ids recorded"

echo "== phase 1b: open-loop generator at a fixed 2000 rps =="
"$FMTM" load --url "$URL" --duration 3 --rps 2000 --open-loop \
  --connections 4 | tee "$ART/load-openloop.txt"
OL_ERRORS=$(sed -n 's/^load: .* overloaded, \([0-9]*\) errors.*/\1/p' "$ART/load-openloop.txt")
if [ -z "$OL_ERRORS" ] || [ "$OL_ERRORS" -ne 0 ]; then
  echo "drill: transport errors under open-loop load: ${OL_ERRORS:-unparsed}" >&2
  exit 1
fi

echo "== phase 2: kill -9 and restart on the same journals =="
kill -9 "$SERVE_PID"
wait "$SERVE_PID" 2>/dev/null || true
SERVE_PID=""

"$FMTM" serve examples/specs/trip.saga examples/specs/figure3.flex \
  --shards 2 --port "$PORT" --data "$DATA" >"$ART/serve-2.log" 2>&1 &
SERVE_PID=$!

# --verify exits 3 if any recorded id is missing or not finished.
"$FMTM" load --url "$URL" --wait-ready 30 \
  --verify "$ART/ids.txt" --verify-timeout 60 | tee "$ART/verify.txt"

# Fresh submissions after recovery must still be accepted.
"$FMTM" load --url "$URL" --count 50 --rps 2000 | tee "$ART/load-2.txt"
"$FMTM" load --url "$URL" --stop
wait "$SERVE_PID" 2>/dev/null || true
SERVE_PID=""
if ! grep -q "stopped (journals drained and checkpointed)" "$ART/serve-2.log"; then
  echo "drill: graceful stop did not drain" >&2
  exit 1
fi

echo "== phase 3: admission control under a tiny queue =="
DATA2="$(mktemp -d)"
"$FMTM" serve examples/specs/trip.saga \
  --shards 1 --port "$PORT" --data "$DATA2" \
  --queue 4 --throttle-ms 5 >"$ART/serve-3.log" 2>&1 &
SERVE_PID=$!

"$FMTM" load --url "$URL" --wait-ready 30 --count 200 --rps 5000 \
  --connections 8 | tee "$ART/load-overload.txt"
"$FMTM" load --url "$URL" --stop
wait "$SERVE_PID" 2>/dev/null || true
SERVE_PID=""
rm -rf "$DATA2"

OVERLOADED=$(sed -n 's/^load: .* accepted, \([0-9]*\) overloaded.*/\1/p' "$ART/load-overload.txt")
ERRORS=$(sed -n 's/^load: .* overloaded, \([0-9]*\) errors.*/\1/p' "$ART/load-overload.txt")
if [ -z "$OVERLOADED" ] || [ "$OVERLOADED" -eq 0 ]; then
  echo "drill: expected overloaded rejections past the high-water mark, got none" >&2
  exit 1
fi
if [ -z "$ERRORS" ] || [ "$ERRORS" -ne 0 ]; then
  echo "drill: transport errors during overload burst: $ERRORS" >&2
  exit 1
fi

echo "drill: ok ($ACCEPTED instances survived kill -9; $OVERLOADED overloaded answers under backpressure)"
