#!/usr/bin/env bash
# Advisory performance drift check between the committed BENCH_nav.json
# and a freshly measured `navbench --quick` run on the CI host.
#
# Absolute µs numbers are hardware-dependent and are not compared;
# what is compared is the *ratios* the benchmark exists to defend:
#
#   * nav_compiled.speedup — the compiled navigator must beat the
#     reference interpreter (< 1.0 is the regression this repo once
#     shipped: a hot path quietly re-serializing every event);
#   * parallel_throughput.speedup — warn when it drops more than 10%
#     below the committed value;
#   * submit_path.wire_overhead — warn when the HTTP wire path costs
#     more than twice its committed multiple of the pool path.
#
# Ratios are only comparable between like machines: a 1-core runner
# cannot reproduce a 4-core parallel_throughput.speedup. Both JSON
# files carry the core count they were measured on, and runs on a
# different core count than the committed baseline are skipped with a
# warning instead of producing noise.
#
# Always exits 0: CI hosts are noisy shared machines, so drift is a
# prompt to look, not a build failure.
set -euo pipefail

cd "$(dirname "$0")/.."

FRESH="${1:?usage: perf_drift.sh <fresh-json-path> (created if absent)}"

if [ ! -f "$FRESH" ]; then
  cargo run --release -p bench --bin navbench -- --quick --out "$FRESH" || exit 0
fi

if [ ! -f BENCH_nav.json ]; then
  echo "::warning title=perf drift::no committed BENCH_nav.json to compare against"
  exit 0
fi

python3 - "$FRESH" <<'PY' || echo "::warning title=perf drift::comparison failed (malformed JSON?)"
import json, sys

fresh = json.load(open(sys.argv[1]))
committed = json.load(open("BENCH_nav.json"))

fresh_cores = fresh.get("cores")
committed_cores = committed.get("cores")
if fresh_cores != committed_cores:
    print(
        "::warning title=perf drift::core counts differ (committed "
        f"{committed_cores}, this host {fresh_cores}); ratios are not "
        "comparable across core counts — skipping"
    )
    sys.exit(0)

def get(d, *path):
    for p in path:
        d = d.get(p, {})
    return d if isinstance(d, (int, float)) else None

warnings = []

nav = get(fresh, "nav_compiled", "speedup")
nav_committed = get(committed, "nav_compiled", "speedup")
if nav is not None and nav < 1.0:
    warnings.append(
        f"nav_compiled.speedup = {nav} (< 1.0): the compiled navigator is "
        f"slower than the reference interpreter (committed: {nav_committed})"
    )

par = get(fresh, "parallel_throughput", "speedup")
par_committed = get(committed, "parallel_throughput", "speedup")
if par is not None and par_committed and par < par_committed * 0.9:
    warnings.append(
        f"parallel_throughput.speedup = {par}, more than 10% below the "
        f"committed {par_committed}"
    )

wire = get(fresh, "submit_path", "wire_overhead")
wire_committed = get(committed, "submit_path", "wire_overhead")
if wire is not None and wire_committed and wire > wire_committed * 2.0:
    warnings.append(
        f"submit_path.wire_overhead = {wire}, more than twice the "
        f"committed {wire_committed}"
    )

print(f"{'ratio':<32}{'committed':>12}{'fresh':>12}")
for label, c, f in [
    ("nav_compiled.speedup", nav_committed, nav),
    ("parallel_throughput.speedup", par_committed, par),
    ("submit_path.wire_overhead", wire_committed, wire),
]:
    print(f"{label:<32}{c if c is not None else '-':>12}{f if f is not None else '-':>12}")

if warnings:
    for w in warnings:
        print(f"::warning title=navbench perf drift::{w}")
else:
    print("perf drift: none (all ratios within tolerance)")
PY

exit 0
